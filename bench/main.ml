(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 4-5), and — with --json — writes a benchmark
   telemetry snapshot for `ccsim bench-diff`.

   Usage:
     dune exec bench/main.exe                 # all experiments, default depth
     dune exec bench/main.exe -- -e fig9      # one experiment (repeatable)
     dune exec bench/main.exe -- --quick      # faster, noisier
     dune exec bench/main.exe -- --reps 5     # replications + CI columns
     dune exec bench/main.exe -- --detail     # abort/hit/message columns
     dune exec bench/main.exe -- --csv f.csv  # machine-readable copy
     dune exec bench/main.exe -- --micro      # bechamel engine microbenches
     dune exec bench/main.exe -- --json b.json # telemetry snapshot
     dune exec bench/main.exe -- --list       # experiment ids *)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the simulation substrate                         *)
(* ------------------------------------------------------------------ *)

(* Kept as plain (name, thunk) pairs so the same workloads feed both the
   bechamel tables (--micro) and the telemetry snapshot (--json), which
   times them directly and attaches replication confidence intervals. *)

let micro_defs : (string * (unit -> unit)) list =
  [
    ( "engine: 10k hold events",
      fun () ->
        let eng = Sim.Engine.create () in
        Sim.Engine.spawn eng (fun () ->
            for _ = 1 to 10_000 do
              Sim.Engine.hold 1.0
            done);
        ignore (Sim.Engine.run eng ()) );
    ( "facility: 100 procs x 100 uses",
      fun () ->
        let eng = Sim.Engine.create () in
        let fac = Sim.Facility.create eng ~name:"f" () in
        for _ = 1 to 100 do
          Sim.Engine.spawn eng (fun () ->
              for _ = 1 to 100 do
                Sim.Facility.use fac 1.0
              done)
        done;
        ignore (Sim.Engine.run eng ()) );
    ( "lock table: 10k request/release",
      fun () ->
        let lt = Cc.Lock_table.create () in
        for i = 1 to 10_000 do
          ignore
            (Cc.Lock_table.request lt ~page:(i mod 97) (i mod 7)
               (if i mod 3 = 0 then Cc.Lock_table.X else Cc.Lock_table.S)
               ~wake:(fun () -> ()));
          Cc.Lock_table.release lt ~page:(i mod 97) (i mod 7)
        done );
    ( "lru pool: 100k inserts cap 400",
      fun () ->
        let c = Storage.Lru_pool.create ~capacity:400 in
        for i = 1 to 100_000 do
          ignore (Storage.Lru_pool.insert c (i mod 2000) ~dirty:(i mod 5 = 0))
        done );
    ( "end-to-end: 10-client 2PL sim, 300 commits",
      fun () ->
        let cfg = Core.Sys_params.table5 ~n_clients:10 () in
        let xp =
          Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
        in
        let spec =
          Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
            ~measured_commits:250 ~cfg ~xact_params:xp
            (Core.Proto.Two_phase Core.Proto.Inter)
        in
        ignore (Core.Simulator.run spec) );
    (* same cell with the trace recorder on: the delta against the run
       above is the whole observability overhead *)
    ( "end-to-end: same sim, trace recorder on",
      fun () ->
        let cfg = Core.Sys_params.table5 ~n_clients:10 () in
        let xp =
          Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
        in
        let spec =
          Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
            ~measured_commits:250 ~obs:Obs.Config.trace_only ~cfg
            ~xact_params:xp
            (Core.Proto.Two_phase Core.Proto.Inter)
        in
        ignore (Core.Simulator.run spec) );
    ( "recorder: 1M typed events",
      fun () ->
        let r = Obs.Recorder.create () in
        for i = 1 to 1_000_000 do
          Obs.Recorder.add r ~time:(float_of_int i)
            (Obs.Event.Disk_read { page = i land 0xfff })
        done );
  ]

let micro_tests =
  let open Bechamel in
  List.map
    (fun (name, fn) -> Test.make ~name (Staged.stage fn))
    micro_defs

let micro_benchmarks () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Printf.printf "  %-45s %14.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    micro_tests

(* Direct timing for the telemetry snapshot: one warmup run, then [runs]
   timed runs; the median goes into the snapshot and the Student-t CI of
   the mean gives bench-diff its noise band. *)
let micro_runs = 5

let time_micro (name, fn) =
  fn ();
  let samples =
    Array.init micro_runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        fn ();
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let median = sorted.(Array.length sorted / 2) in
  let ci = Obs.Run_stats.mean_ci samples in
  let lo, hi =
    if Obs.Run_stats.available ci then
      (Obs.Run_stats.ci_lo ci, Obs.Run_stats.ci_hi ci)
    else (median, median)
  in
  {
    Experiments.Telemetry.m_name = name;
    m_runs = micro_runs;
    m_median_ns = median;
    m_ci_lo_ns = lo;
    m_ci_hi_ns = hi;
  }

(* A fixed profiled cell measuring raw engine speed and event-heap
   high-water mark, independent of which experiments were selected. *)
let engine_probe () =
  let cfg = Core.Sys_params.table5 ~n_clients:10 () in
  let xp = Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 () in
  let spec =
    Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
      ~measured_commits:250
      ~obs:(Obs.Config.make ~profile:true ())
      ~cfg ~xact_params:xp
      (Core.Proto.Two_phase Core.Proto.Inter)
  in
  let t0 = Unix.gettimeofday () in
  let r = Core.Simulator.run spec in
  let wall = Unix.gettimeofday () -. t0 in
  let heap_hwm =
    match r.Core.Simulator.obs with
    | Some { Obs.Run.reps = rep :: _ } -> (
        match rep.Obs.Run.profile with
        | Some p -> p.Sim.Engine.pr_heap_hwm
        | None -> 0)
    | _ -> 0
  in
  {
    Experiments.Telemetry.p_wall_s = wall;
    p_events = r.Core.Simulator.events;
    p_heap_hwm = heap_hwm;
  }

(* Fixed-seed latency cells for the snapshot: one small run per protocol
   with spans + metrics on, quantiles read off the commit-latency
   histogram.  Simulated time, fully deterministic — bench-diff compares
   them with no noise band. *)
let latency_cells ~jobs () =
  let cells =
    [
      (Core.Proto.Two_phase Core.Proto.Inter, 1);
      (Core.Proto.Certification Core.Proto.Inter, 1);
      (Core.Proto.Callback, 1);
      (Core.Proto.No_wait { notify = Some Core.Proto.Push }, 1);
      (Core.Proto.Two_phase Core.Proto.Inter, 2);
      (Core.Proto.Callback, 2);
    ]
  in
  List.map
    (fun (algo, n_shards) ->
      let cfg = Core.Sys_params.table5 ~n_clients:8 () in
      let xp =
        Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
      in
      let spec =
        {
          (Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
             ~measured_commits:300 ~obs:Obs.Config.latency ~cfg
             ~xact_params:xp algo)
          with
          Core.Simulator.n_shards;
        }
      in
      let r =
        if n_shards > 1 then Shard.Shard_sim.run_replicated ~jobs spec ~reps:1
        else Core.Simulator.run_replicated ~jobs spec ~reps:1
      in
      let h =
        match r.Core.Simulator.obs with
        | Some o -> (
            match Obs.Run.merged_metrics o with
            | Some m -> Obs.Metrics.histogram m "ccsim_commit_latency_seconds"
            | None -> None)
        | None -> None
      in
      match h with
      | Some h when Obs.Metrics.Hist.count h > 0 ->
          let n = Obs.Metrics.Hist.count h in
          {
            Experiments.Telemetry.l_algo = Core.Proto.algorithm_name algo;
            l_shards = n_shards;
            l_p50 = Obs.Metrics.Hist.quantile h 0.50;
            l_p95 = Obs.Metrics.Hist.quantile h 0.95;
            l_p99 = Obs.Metrics.Hist.quantile h 0.99;
            l_mean = Obs.Metrics.Hist.sum h /. float_of_int n;
            l_xacts = n;
          }
      | _ ->
          Printf.eprintf "bench: latency cell %s@%d produced no histogram\n"
            (Core.Proto.algorithm_name algo) n_shards;
          exit 1)
    cells

(* Fixed-seed message-amplification cells: one small run per protocol at
   1 and 4 shards with the causal message record on, msgs/pkts/bytes per
   committed transaction summed off the per-kind amplification table.
   Simulated counts, fully deterministic — bench-diff compares them with
   no noise band. *)
let causal_cells ~jobs () =
  let algos =
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Certification Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = None };
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
      Core.Proto.No_wait { notify = Some Core.Proto.Invalidate };
    ]
  in
  let cells =
    List.concat_map (fun algo -> [ (algo, 1); (algo, 4) ]) algos
  in
  List.map
    (fun (algo, n_shards) ->
      let cfg = Core.Sys_params.table5 ~n_clients:8 () in
      let xp =
        Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
      in
      let spec =
        {
          (Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
             ~measured_commits:300 ~obs:Obs.Config.causal ~cfg
             ~xact_params:xp algo)
          with
          Core.Simulator.n_shards;
        }
      in
      let r =
        if n_shards > 1 then Shard.Shard_sim.run_replicated ~jobs spec ~reps:1
        else Core.Simulator.run_replicated ~jobs spec ~reps:1
      in
      let causal =
        match r.Core.Simulator.obs with
        | Some o -> Obs.Run.merged_causal o
        | None -> [||]
      in
      if Array.length causal = 0 then begin
        Printf.eprintf "bench: causal cell %s@%d produced no causal record\n"
          (Core.Proto.algorithm_name algo) n_shards;
        exit 1
      end;
      let an = Obs.Causal.analyze causal in
      let commits = an.Obs.Causal.an_check.Obs.Causal.ck_committed in
      if commits = 0 then begin
        Printf.eprintf "bench: causal cell %s@%d committed nothing\n"
          (Core.Proto.algorithm_name algo) n_shards;
        exit 1
      end;
      let msgs = ref 0 and pkts = ref 0 and bytes = ref 0 in
      List.iter
        (fun (a : Obs.Causal.amp) ->
          msgs := !msgs + a.Obs.Causal.am_msgs;
          pkts := !pkts + a.Obs.Causal.am_pkts;
          bytes := !bytes + a.Obs.Causal.am_bytes)
        (Obs.Causal.amplification causal);
      let per v = float_of_int v /. float_of_int commits in
      {
        Experiments.Telemetry.z_algo = Core.Proto.algorithm_name algo;
        z_shards = n_shards;
        z_msgs_per_commit = per !msgs;
        z_pkts_per_commit = per !pkts;
        z_bytes_per_commit = per !bytes;
        z_commits = commits;
      })
    cells

(* ------------------------------------------------------------------ *)
(* Experiment driver                                                   *)
(* ------------------------------------------------------------------ *)

let () =
  let experiments = ref [] in
  let quick = ref false in
  let detail = ref false in
  let micro = ref false in
  let csv = ref None in
  let plots = ref None in
  let json = ref None in
  let reps = ref None in
  let list_only = ref false in
  let jobs = ref (Sim.Pool.default_jobs ()) in
  let speclist =
    [
      ( "-e",
        Arg.String (fun s -> experiments := s :: !experiments),
        "ID run one experiment (repeatable); default: all" );
      ( "-j",
        Arg.Set_int jobs,
        "N worker domains for independent simulations (default: cores - 1); \
         results are identical for every value" );
      ("--quick", Arg.Set quick, " fewer commits per run (smoke-test depth)");
      ( "--reps",
        Arg.Int (fun n -> reps := Some n),
        "N replications per cell (default 1); at N >= 2 every figure cell \
         gains a 95% confidence interval" );
      ("--detail", Arg.Set detail, " print abort/hit/message columns");
      ("--micro", Arg.Set micro, " also run bechamel engine microbenchmarks");
      ( "--csv",
        Arg.String (fun s -> csv := Some s),
        "FILE also write every figure as CSV" );
      ( "--plots",
        Arg.String (fun s -> plots := Some s),
        "DIR also write gnuplot .dat/.gp files per figure" );
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write a benchmark telemetry snapshot (wall-clock, engine \
         throughput, microbench medians, provenance) for ccsim bench-diff" );
      ("--list", Arg.Set list_only, " list experiment ids and exit");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe: regenerate the paper's tables and figures";
  if !list_only then begin
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-14s %s\n" id descr)
      Experiments.Suite.all;
    Printf.printf "%-14s %s\n" "client-sweep"
      "scalability: engine events/s and heap vs client population (not \
       run by default)";
    exit 0
  end;
  let opts =
    let base =
      if !quick then Experiments.Exp_defs.quick_opts
      else Experiments.Exp_defs.default_opts
    in
    match !reps with
    | Some n when n >= 1 -> { base with Experiments.Exp_defs.reps = n }
    | Some n ->
        Printf.eprintf "bench: --reps must be >= 1 (got %d)\n" n;
        exit 1
    | None -> base
  in
  Printf.printf "%s\n%!"
    (Experiments.Report.repro_line ~seed:opts.Experiments.Exp_defs.seed
       ~jobs:!jobs);
  if opts.Experiments.Exp_defs.reps < 2 then
    Printf.printf
      "# note: reps=1 — replication confidence intervals unavailable (± \
       columns read n/a); rerun with --reps N>=2 for intervals\n%!";
  let runner = Experiments.Exp_defs.make_runner ~jobs:!jobs opts in
  (* client-sweep is not a Suite figure (it benchmarks the simulator, not
     the paper); recognize the id here and run it after the figures *)
  let sweep_requested = List.mem "client-sweep" !experiments in
  let figure_ids = List.filter (fun id -> id <> "client-sweep") !experiments in
  let selected =
    match figure_ids with
    | [] when sweep_requested -> []
    | [] -> Experiments.Suite.all
    | ids ->
        List.rev_map
          (fun id ->
            match Experiments.Suite.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 1)
          ids
  in
  let csv_buf = Buffer.create 4096 in
  let telemetry = ref [] in
  let shard_cells = ref [] in
  let t0 = Sys.time () in
  List.iter
    (fun (id, descr, build) ->
      Format.printf "@.###### %s — %s@." id descr;
      let sims_before = Experiments.Exp_defs.runs_executed runner in
      let wall0 = Unix.gettimeofday () in
      let out = Experiments.Exp_defs.run_build runner build in
      let wall = Unix.gettimeofday () -. wall0 in
      Experiments.Report.print_output ~detail:!detail Format.std_formatter out;
      let events = ref 0 in
      (* the shard sweep's throughput figure doubles as telemetry: its
         cells are deterministic, so bench-diff treats drift as semantic *)
      (match out with
      | Experiments.Suite.Figures (fig :: _) when id = "shard-sweep" ->
          shard_cells :=
            List.concat_map
              (fun (s : Experiments.Exp_defs.series) ->
                List.map
                  (fun (x, (r : Core.Simulator.result)) ->
                    {
                      Experiments.Telemetry.h_shards = int_of_float x;
                      h_pattern = s.Experiments.Exp_defs.label;
                      h_throughput = r.Core.Simulator.throughput;
                      h_xshard_commits = r.Core.Simulator.xshard_commits;
                      h_prepares = r.Core.Simulator.prepares;
                    })
                  s.Experiments.Exp_defs.points)
              fig.Experiments.Exp_defs.series
      | _ -> ());
      (match out with
      | Experiments.Suite.Figures figs ->
          List.iter
            (fun f ->
              List.iter
                (fun s ->
                  List.iter
                    (fun (_, r) -> events := !events + r.Core.Simulator.events)
                    s.Experiments.Exp_defs.points)
                f.Experiments.Exp_defs.series;
              List.iter
                (fun line ->
                  Buffer.add_string csv_buf line;
                  Buffer.add_char csv_buf '\n')
                (Experiments.Report.figure_csv f);
              match !plots with
              | Some dir -> ignore (Experiments.Report.write_gnuplot ~dir f)
              | None -> ())
            figs
      | Experiments.Suite.Map _ -> ());
      telemetry :=
        {
          Experiments.Telemetry.e_id = id;
          e_wall_s = wall;
          e_sims = Experiments.Exp_defs.runs_executed runner - sims_before;
          e_events = !events;
        }
        :: !telemetry;
      Format.printf "@?")
    selected;
  let sweep_cells =
    if not sweep_requested then []
    else begin
      Format.printf "@.###### client-sweep — simulator scalability vs \
                     population@.";
      let cells =
        Experiments.Client_sweep.run ~quick:!quick
          ~seed:opts.Experiments.Exp_defs.seed ()
      in
      Experiments.Client_sweep.print Format.std_formatter cells;
      List.iter
        (fun line ->
          Buffer.add_string csv_buf line;
          Buffer.add_char csv_buf '\n')
        (Experiments.Client_sweep.csv cells);
      Format.printf "@?";
      cells
    end
  in
  (match !csv with
  | Some file ->
      let oc = open_out file in
      output_string oc (Buffer.contents csv_buf);
      close_out oc;
      Printf.printf "\ncsv written to %s\n" file
  | None -> ());
  Printf.printf "\n%d simulations executed in %.1fs cpu time\n"
    (Experiments.Exp_defs.runs_executed runner)
    (Sys.time () -. t0);
  (match !json with
  | Some file ->
      Printf.printf "\ntiming %d microbenches (%d runs each) for %s...\n%!"
        (List.length micro_defs) micro_runs file;
      let latency = latency_cells ~jobs:!jobs () in
      let causal = causal_cells ~jobs:!jobs () in
      let snapshot =
        {
          Experiments.Telemetry.s_schema =
            Experiments.Telemetry.schema_version;
          s_repro =
            Experiments.Report.repro_line
              ~seed:opts.Experiments.Exp_defs.seed ~jobs:!jobs;
          s_git = Experiments.Report.git_describe ();
          s_ocaml = Sys.ocaml_version;
          s_host = Experiments.Report.hostname ();
          s_seed = opts.Experiments.Exp_defs.seed;
          s_jobs = !jobs;
          s_reps = opts.Experiments.Exp_defs.reps;
          s_quick = !quick;
          s_experiments = List.rev !telemetry;
          s_micro = List.map time_micro micro_defs;
          s_sweep =
            List.map
              (fun (c : Experiments.Client_sweep.cell) ->
                {
                  Experiments.Telemetry.w_clients = c.sw_clients;
                  w_algo = c.sw_algo;
                  w_events = c.sw_events;
                  w_wall_s = c.sw_wall_s;
                  w_heap_hwm = c.sw_heap_hwm;
                })
              sweep_cells;
          s_shard = !shard_cells;
          s_latency = latency;
          s_causal = causal;
          s_engine = Some (engine_probe ());
        }
      in
      let text = Experiments.Telemetry.to_json snapshot in
      (* every snapshot must satisfy the in-repo RFC 8259 validator *)
      (match Obs.Export.validate_json text with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bench: emitted snapshot is invalid JSON: %s\n" e;
          exit 1);
      Obs.Export.write_file file text;
      Printf.printf "telemetry snapshot written to %s\n" file
  | None -> ());
  if !micro then begin
    Printf.printf "\n###### bechamel microbenchmarks\n%!";
    micro_benchmarks ()
  end
