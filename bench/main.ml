(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 4-5).

   Usage:
     dune exec bench/main.exe                 # all experiments, default depth
     dune exec bench/main.exe -- -e fig9      # one experiment (repeatable)
     dune exec bench/main.exe -- --quick      # faster, noisier
     dune exec bench/main.exe -- --detail     # abort/hit/message columns
     dune exec bench/main.exe -- --csv f.csv  # machine-readable copy
     dune exec bench/main.exe -- --micro      # bechamel engine microbenches
     dune exec bench/main.exe -- --list       # experiment ids *)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulation substrate                *)
(* ------------------------------------------------------------------ *)

let micro_tests =
  let open Bechamel in
  [
    Test.make ~name:"engine: 10k hold events"
      (Staged.stage (fun () ->
           let eng = Sim.Engine.create () in
           Sim.Engine.spawn eng (fun () ->
               for _ = 1 to 10_000 do
                 Sim.Engine.hold 1.0
               done);
           ignore (Sim.Engine.run eng ())));
    Test.make ~name:"facility: 100 procs x 100 uses"
      (Staged.stage (fun () ->
           let eng = Sim.Engine.create () in
           let fac = Sim.Facility.create eng ~name:"f" () in
           for _ = 1 to 100 do
             Sim.Engine.spawn eng (fun () ->
                 for _ = 1 to 100 do
                   Sim.Facility.use fac 1.0
                 done)
           done;
           ignore (Sim.Engine.run eng ())));
    Test.make ~name:"lock table: 10k request/release"
      (Staged.stage (fun () ->
           let lt = Cc.Lock_table.create () in
           for i = 1 to 10_000 do
             ignore
               (Cc.Lock_table.request lt ~page:(i mod 97) (i mod 7)
                  (if i mod 3 = 0 then Cc.Lock_table.X else Cc.Lock_table.S)
                  ~wake:(fun () -> ()));
             Cc.Lock_table.release lt ~page:(i mod 97) (i mod 7)
           done));
    Test.make ~name:"lru pool: 100k inserts cap 400"
      (Staged.stage (fun () ->
           let c = Storage.Lru_pool.create ~capacity:400 in
           for i = 1 to 100_000 do
             ignore (Storage.Lru_pool.insert c (i mod 2000) ~dirty:(i mod 5 = 0))
           done));
    Test.make ~name:"end-to-end: 10-client 2PL sim, 300 commits"
      (Staged.stage (fun () ->
           let cfg = Core.Sys_params.table5 ~n_clients:10 () in
           let xp =
             Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
           in
           let spec =
             Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
               ~measured_commits:250 ~cfg ~xact_params:xp
               (Core.Proto.Two_phase Core.Proto.Inter)
           in
           ignore (Core.Simulator.run spec)));
    (* same cell with the trace recorder on: the delta against the run
       above is the whole observability overhead *)
    Test.make ~name:"end-to-end: same sim, trace recorder on"
      (Staged.stage (fun () ->
           let cfg = Core.Sys_params.table5 ~n_clients:10 () in
           let xp =
             Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.25 ()
           in
           let spec =
             Core.Simulator.default_spec ~seed:3 ~warmup_commits:50
               ~measured_commits:250 ~obs:Obs.Config.trace_only ~cfg
               ~xact_params:xp
               (Core.Proto.Two_phase Core.Proto.Inter)
           in
           ignore (Core.Simulator.run spec)));
    Test.make ~name:"recorder: 1M typed events"
      (Staged.stage (fun () ->
           let r = Obs.Recorder.create () in
           for i = 1 to 1_000_000 do
             Obs.Recorder.add r ~time:(float_of_int i)
               (Obs.Event.Disk_read { page = i land 0xfff })
           done));
  ]

let micro_benchmarks () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              Printf.printf "  %-45s %14.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    micro_tests

(* ------------------------------------------------------------------ *)
(* Experiment driver                                                   *)
(* ------------------------------------------------------------------ *)

let () =
  let experiments = ref [] in
  let quick = ref false in
  let detail = ref false in
  let micro = ref false in
  let csv = ref None in
  let plots = ref None in
  let list_only = ref false in
  let jobs = ref (Sim.Pool.default_jobs ()) in
  let speclist =
    [
      ( "-e",
        Arg.String (fun s -> experiments := s :: !experiments),
        "ID run one experiment (repeatable); default: all" );
      ( "-j",
        Arg.Set_int jobs,
        "N worker domains for independent simulations (default: cores - 1); \
         results are identical for every value" );
      ("--quick", Arg.Set quick, " fewer commits per run (smoke-test depth)");
      ("--detail", Arg.Set detail, " print abort/hit/message columns");
      ("--micro", Arg.Set micro, " also run bechamel engine microbenchmarks");
      ( "--csv",
        Arg.String (fun s -> csv := Some s),
        "FILE also write every figure as CSV" );
      ( "--plots",
        Arg.String (fun s -> plots := Some s),
        "DIR also write gnuplot .dat/.gp files per figure" );
      ("--list", Arg.Set list_only, " list experiment ids and exit");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe: regenerate the paper's tables and figures";
  if !list_only then begin
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-14s %s\n" id descr)
      Experiments.Suite.all;
    exit 0
  end;
  let opts = if !quick then Experiments.Exp_defs.quick_opts else Experiments.Exp_defs.default_opts in
  Printf.printf "%s\n%!"
    (Experiments.Report.repro_line ~seed:opts.Experiments.Exp_defs.seed
       ~jobs:!jobs);
  let runner = Experiments.Exp_defs.make_runner ~jobs:!jobs opts in
  let selected =
    match !experiments with
    | [] -> Experiments.Suite.all
    | ids ->
        List.rev_map
          (fun id ->
            match Experiments.Suite.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 1)
          ids
  in
  let csv_buf = Buffer.create 4096 in
  let t0 = Sys.time () in
  List.iter
    (fun (id, descr, build) ->
      Format.printf "@.###### %s — %s@." id descr;
      let out = Experiments.Exp_defs.run_build runner build in
      Experiments.Report.print_output ~detail:!detail Format.std_formatter out;
      (match out with
      | Experiments.Suite.Figures figs ->
          List.iter
            (fun f ->
              List.iter
                (fun line ->
                  Buffer.add_string csv_buf line;
                  Buffer.add_char csv_buf '\n')
                (Experiments.Report.figure_csv f);
              match !plots with
              | Some dir -> ignore (Experiments.Report.write_gnuplot ~dir f)
              | None -> ())
            figs
      | Experiments.Suite.Map _ -> ());
      Format.printf "@?")
    selected;
  (match !csv with
  | Some file ->
      let oc = open_out file in
      output_string oc (Buffer.contents csv_buf);
      close_out oc;
      Printf.printf "\ncsv written to %s\n" file
  | None -> ());
  Printf.printf "\n%d simulations executed in %.1fs cpu time\n"
    (Experiments.Exp_defs.runs_executed runner)
    (Sys.time () -. t0);
  if !micro then begin
    Printf.printf "\n###### bechamel microbenchmarks\n%!";
    micro_benchmarks ()
  end
