(* Network/server upgrade study: the paper's sections 5.3-5.4 as a
   what-if tool.

   Fixes one workload and asks: what do a 10x faster server CPU and an
   infinitely fast network each buy me, and does the best consistency
   algorithm change?  (The paper's answer: bottleneck shifts CPU -> network
   -> disks, and once messages are cheap, no-wait locking with notification
   and callback locking take over.)

   Run with:  dune exec examples/network_upgrade_study.exe *)

let platforms =
  [
    ("1990 baseline (2 MIPS, 2 ms net)", fun n -> Core.Sys_params.table5 ~n_clients:n ());
    ("fast server (20 MIPS)", fun n -> Core.Sys_params.fast_server ~n_clients:n ());
    ( "fast server + fast network",
      fun n -> Core.Sys_params.fast_server_fast_net ~n_clients:n () );
  ]

let () =
  let n_clients = 50 in
  let workload =
    Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.25 ()
  in
  Format.printf
    "Upgrade study: %d clients, short transactions, locality 0.25, write \
     probability 0.5@."
    n_clients;
  List.iter
    (fun (label, make_cfg) ->
      Format.printf "@.--- %s ---@." label;
      Format.printf "%-16s %12s %12s %8s %8s %8s@." "algorithm" "response(s)"
        "commits/s" "cpu" "disk" "net";
      let results =
        List.map
          (fun algo ->
            let cfg = make_cfg n_clients in
            let spec =
              Core.Simulator.default_spec ~seed:5 ~warmup_commits:150
                ~measured_commits:900 ~cfg ~xact_params:workload algo
            in
            (algo, Core.Simulator.run spec))
          Core.Proto.section5_algorithms
      in
      List.iter
        (fun (algo, r) ->
          Format.printf "%-16s %12.3f %12.2f %7.0f%% %7.0f%% %7.0f%%@."
            (Core.Proto.algorithm_name algo)
            r.Core.Simulator.mean_response r.Core.Simulator.throughput
            (100.0 *. r.Core.Simulator.server_cpu_util)
            (100.0 *. r.Core.Simulator.disk_util)
            (100.0 *. r.Core.Simulator.net_util))
        results;
      let best =
        List.fold_left
          (fun (ba, br) (a, r) ->
            if r.Core.Simulator.mean_response < br.Core.Simulator.mean_response
            then (a, r)
            else (ba, br))
          (List.hd results) (List.tl results)
      in
      Format.printf "best: %s@." (Core.Proto.algorithm_name (fst best)))
    platforms
