(* Analytic cross-check: exact Mean Value Analysis vs the simulator.

   For a read-only workload there is no lock contention, so the simulated
   system is (approximately) a product-form closed queueing network and
   MVA should predict it well.  As the write probability rises, the gap
   between prediction and simulation grows — and that gap *is* the cost of
   data contention (lock waits, deadlocks, restarts), which queueing theory
   cannot see.  A nice way to separate resource contention from data
   contention in any measurement.

   Run with:  dune exec examples/analytic_vs_sim.exe *)

let () =
  let xp pw = Db.Xact_params.short_batch ~prob_write:pw ~inter_xact_loc:0.0 () in
  Format.printf
    "MVA prediction vs simulation (2PL, Loc=0, Table 5 server, 20 clients)@.@.";
  Format.printf "%8s %14s %14s %14s %14s %18s@." "pw" "mva tput" "sim tput"
    "mva resp(s)" "sim resp(s)" "data-contention gap";
  List.iter
    (fun pw ->
      let cfg = Core.Sys_params.table5 ~n_clients:20 () in
      let sim =
        Core.Simulator.run
          (Core.Simulator.default_spec ~seed:7 ~warmup_commits:200
             ~measured_commits:1200 ~cfg ~xact_params:(xp pw)
             (Core.Proto.Two_phase Core.Proto.Inter))
      in
      let inputs =
        Core.Mva.demands_2pl cfg (xp pw) ~client_hit:0.05 ~buffer_hit:0.2
      in
      let p = Core.Mva.solve inputs in
      Format.printf "%8.2f %14.2f %14.2f %14.3f %14.3f %17.0f%%@." pw
        p.Core.Mva.throughput sim.Core.Simulator.throughput
        p.Core.Mva.response sim.Core.Simulator.mean_response
        (100.0
        *. (sim.Core.Simulator.mean_response -. p.Core.Mva.response)
        /. p.Core.Mva.response))
    [ 0.0; 0.2; 0.5 ];
  Format.printf
    "@.Throughput agrees within a few percent.  The response residual is@.\
     what the product-form model cannot see: deterministic (non-@.\
     exponential) service at the disks and CPUs, plus lock waiting - run@.\
     a higher-contention workload (more clients, a hotter database) and@.\
     watch the gap open up.@."
