(* Capacity planner: how many client workstations can one server carry
   before mean transaction response time blows past an SLO?

   Sweeps the client count for a chosen algorithm and workload, reports the
   knee of the curve, and shows which resource saturates first — the
   paper's bottleneck-shifting story (sections 5.1, 5.3, 5.4) as a sizing
   tool.

   Run with:
     dune exec examples/capacity_planner.exe
     dune exec examples/capacity_planner.exe -- callback 1.5 *)

let algo_of_string = function
  | "2pl" -> Core.Proto.Two_phase Core.Proto.Inter
  | "cert" -> Core.Proto.Certification Core.Proto.Inter
  | "callback" -> Core.Proto.Callback
  | "no-wait" -> Core.Proto.No_wait { notify = None }
  | "no-wait-notify" -> Core.Proto.No_wait { notify = Some Core.Proto.Push }
  | s ->
      Printf.eprintf
        "unknown algorithm %S (2pl|cert|callback|no-wait|no-wait-notify)\n" s;
      exit 1

let () =
  let algo =
    if Array.length Sys.argv > 1 then algo_of_string Sys.argv.(1)
    else Core.Proto.Callback
  in
  let slo =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 2.0
  in
  let workload =
    Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 ()
  in
  Format.printf
    "Capacity plan for %s, SLO: mean response <= %.2f s (Table 5 server)@.@."
    (Core.Proto.algorithm_name algo)
    slo;
  Format.printf "%8s %12s %12s %10s %10s %10s %10s@." "clients" "response(s)"
    "commits/s" "cpu" "disk" "net" "within SLO";
  let counts = [ 5; 10; 15; 20; 25; 30; 40; 50; 60 ] in
  let best = ref None in
  List.iter
    (fun n ->
      let cfg = Core.Sys_params.table5 ~n_clients:n () in
      let spec =
        Core.Simulator.default_spec ~seed:11 ~warmup_commits:150
          ~measured_commits:900 ~cfg ~xact_params:workload algo
      in
      let r = Core.Simulator.run spec in
      let ok = r.Core.Simulator.mean_response <= slo in
      if ok then best := Some (n, r);
      Format.printf "%8d %12.3f %12.2f %9.0f%% %9.0f%% %9.0f%% %10s@." n
        r.Core.Simulator.mean_response r.Core.Simulator.throughput
        (100.0 *. r.Core.Simulator.server_cpu_util)
        (100.0 *. r.Core.Simulator.disk_util)
        (100.0 *. r.Core.Simulator.net_util)
        (if ok then "yes" else "no"))
    counts;
  (match !best with
  | Some (n, r) ->
      Format.printf
        "@.Verdict: up to ~%d clients fit the SLO; at that point the hottest \
         resource is the %s.@."
        n
        (let cpu = r.Core.Simulator.server_cpu_util
         and disk = r.Core.Simulator.disk_util
         and net = r.Core.Simulator.net_util in
         if cpu >= disk && cpu >= net then "server CPU"
         else if disk >= net then "data disks"
         else "network")
  | None -> Format.printf "@.Verdict: no tested client count meets the SLO.@.")
