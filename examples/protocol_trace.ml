(* Protocol trace: watch the callback-locking protocol run, message by
   message, on a tiny two-client system.

   Shows fetches, lock waits and grants, callback requests and releases,
   commits, aborts, and update notifications with their simulated
   timestamps — the fastest way to understand (or debug) an algorithm.

   The trace comes from the typed recorder ([spec.obs] with [trace] on):
   the simulator installs a per-domain buffer, the run fills it, and the
   entries come back inside [result.obs] — the same machinery `ccsim
   trace` uses, and it works identically under [Sim.Pool] workers.

   Run with:
     dune exec examples/protocol_trace.exe
     dune exec examples/protocol_trace.exe -- no-wait-notify 120 *)

let algo_of_string = function
  | "2pl" -> Core.Proto.Two_phase Core.Proto.Inter
  | "cert" -> Core.Proto.Certification Core.Proto.Inter
  | "callback" -> Core.Proto.Callback
  | "no-wait" -> Core.Proto.No_wait { notify = None }
  | "no-wait-notify" -> Core.Proto.No_wait { notify = Some Core.Proto.Push }
  | s ->
      Printf.eprintf "unknown algorithm %S\n" s;
      exit 1

let () =
  let algo =
    if Array.length Sys.argv > 1 then algo_of_string Sys.argv.(1)
    else Core.Proto.Callback
  in
  let max_events =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 80
  in
  Format.printf "Protocol trace: %s, 2 clients, tiny hot database@.@."
    (Core.Proto.algorithm_name algo);
  let cfg = Core.Sys_params.table5 ~n_clients:2 () in
  let spec =
    {
      (Core.Simulator.default_spec ~seed:12 ~warmup_commits:0
         ~measured_commits:6 ~obs:Obs.Config.trace_only ~cfg
         ~xact_params:
           (Db.Xact_params.short_batch ~prob_write:0.5 ~inter_xact_loc:0.6 ())
         algo)
      with
      (* a small hot database so the two clients actually collide *)
      Core.Simulator.db_params = Db.Db_params.uniform ~n_classes:2 ~pages_per_class:12 ();
    }
  in
  let r = Core.Simulator.run spec in
  let entries =
    match r.Core.Simulator.obs with
    | Some o -> (List.hd o.Obs.Run.reps).Obs.Run.trace
    | None -> [||]
  in
  let shown = min max_events (Array.length entries) in
  Array.iter
    (fun e ->
      Format.printf "%10.4fs  %s@." e.Obs.Recorder.time
        (Obs.Event.to_string e.Obs.Recorder.ev))
    (Array.sub entries 0 shown);
  Format.printf "@.(%d of %d events shown; %d transactions committed, %d \
                 aborted)@."
    shown (Array.length entries) r.Core.Simulator.commits
    r.Core.Simulator.aborts
