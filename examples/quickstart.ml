(* Quickstart: simulate a small client/server object store under two cache
   consistency algorithms and compare them.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The system: the paper's Table 5 hardware with 20 client workstations. *)
  let cfg = Core.Sys_params.table5 ~n_clients:20 () in

  (* The workload: short batch transactions (4-12 object reads), 20 % of
     read atoms updated, half the reads hitting recently-used objects. *)
  let workload =
    Db.Xact_params.short_batch ~prob_write:0.2 ~inter_xact_loc:0.5 ()
  in

  (* Run each algorithm for 2000 committed transactions after a 300-commit
     warmup, and print the paper's headline metrics. *)
  let algorithms =
    [
      Core.Proto.Two_phase Core.Proto.Inter;
      Core.Proto.Callback;
      Core.Proto.No_wait { notify = None };
      Core.Proto.No_wait { notify = Some Core.Proto.Push };
    ]
  in
  Format.printf "%-16s %12s %12s %8s %8s %10s@." "algorithm" "response(s)"
    "commits/s" "aborts" "hit" "msgs/xact";
  List.iter
    (fun algo ->
      let spec =
        Core.Simulator.default_spec ~seed:2024 ~cfg ~xact_params:workload algo
      in
      let r = Core.Simulator.run spec in
      Format.printf "%-16s %12.3f %12.2f %8d %8.2f %10.1f@."
        (Core.Proto.algorithm_name algo)
        r.Core.Simulator.mean_response r.Core.Simulator.throughput
        r.Core.Simulator.aborts r.Core.Simulator.hit_ratio
        r.Core.Simulator.msgs_per_commit)
    algorithms;
  Format.printf
    "@.With medium locality, callback locking's retained read locks save@.\
     server round-trips; under heavier write traffic two-phase locking@.\
     catches up because callbacks must be revoked (paper sections 5.1 and 6).@."
