(* Design advisor: operationalizes the paper's Section 6 conclusions.

   Describe your deployment (clients, server speed, network, workload shape)
   on the command line and the advisor simulates all five algorithms on it,
   then recommends one.

   Run with:
     dune exec examples/design_advisor.exe
     dune exec examples/design_advisor.exe -- 50 0.75 0.1 fast-net
     (arguments: [clients] [locality] [write-prob] [table5|fast-server|fast-net]
                 [interactive]) *)

let usage () =
  prerr_endline
    "usage: design_advisor [clients] [locality] [write-prob] \
     [table5|fast-server|fast-net] [interactive]";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let clients = ref 30
  and locality = ref 0.5
  and pw = ref 0.2
  and platform = ref "table5"
  and interactive = ref false in
  (match args with
  | [] -> ()
  | c :: rest -> (
      (try clients := int_of_string c with _ -> usage ());
      match rest with
      | [] -> ()
      | l :: rest -> (
          (try locality := float_of_string l with _ -> usage ());
          match rest with
          | [] -> ()
          | p :: rest ->
              (try pw := float_of_string p with _ -> usage ());
              List.iter
                (function
                  | "interactive" -> interactive := true
                  | ("table5" | "fast-server" | "fast-net") as s -> platform := s
                  | _ -> usage ())
                rest)));
  let cfg =
    match !platform with
    | "fast-server" -> Core.Sys_params.fast_server ~n_clients:!clients ()
    | "fast-net" -> Core.Sys_params.fast_server_fast_net ~n_clients:!clients ()
    | _ -> Core.Sys_params.table5 ~n_clients:!clients ()
  in
  let workload =
    if !interactive then
      Db.Xact_params.interactive ~prob_write:!pw ~inter_xact_loc:!locality ()
    else Db.Xact_params.short_batch ~prob_write:!pw ~inter_xact_loc:!locality ()
  in
  Format.printf
    "Deployment: %d clients, %s platform, locality %.2f, write probability \
     %.2f, %s transactions@.@."
    !clients !platform !locality !pw
    (if !interactive then "interactive" else "batch");
  let candidates =
    Core.Proto.Certification Core.Proto.Inter :: Core.Proto.section5_algorithms
  in
  let results =
    List.map
      (fun algo ->
        let spec =
          Core.Simulator.default_spec ~seed:7 ~warmup_commits:200
            ~measured_commits:1200 ~cfg ~xact_params:workload algo
        in
        (algo, Core.Simulator.run spec))
      candidates
  in
  Format.printf "%-16s %12s %12s %8s %14s@." "algorithm" "response(s)"
    "commits/s" "aborts" "server cpu";
  List.iter
    (fun (algo, r) ->
      Format.printf "%-16s %12.3f %12.2f %8d %13.0f%%@."
        (Core.Proto.algorithm_name algo)
        r.Core.Simulator.mean_response r.Core.Simulator.throughput
        r.Core.Simulator.aborts
        (100.0 *. r.Core.Simulator.server_cpu_util))
    results;
  let best =
    List.fold_left
      (fun (ba, br) (a, r) ->
        if r.Core.Simulator.mean_response < br.Core.Simulator.mean_response then
          (a, r)
        else (ba, br))
      (List.hd results) (List.tl results)
  in
  let name = Core.Proto.algorithm_name (fst best) in
  Format.printf "@.Recommendation: %s (mean response %.3f s)@." name
    (snd best).Core.Simulator.mean_response;
  Format.printf
    "Paper rule of thumb (section 6): callback locking when locality is \
     high@.or locality is medium with few updates; two-phase locking \
     otherwise;@.no-wait locking with notification when both the network \
     and server are fast.@."
