(* ccsim: command-line front end to the client/server DBMS cache
   consistency simulator.

     ccsim run --algo callback --clients 30 --loc 0.5 --pw 0.2
     ccsim run --algo no-wait-notify --platform fast-net --large
     ccsim exp fig9 --detail
     ccsim exp all --quick --csv results.csv
     ccsim list *)

open Cmdliner

let algo_conv =
  let parse = function
    | "2pl" -> Ok (Core.Proto.Two_phase Core.Proto.Inter)
    | "2pl-intra" -> Ok (Core.Proto.Two_phase Core.Proto.Intra)
    | "cert" -> Ok (Core.Proto.Certification Core.Proto.Inter)
    | "cert-intra" -> Ok (Core.Proto.Certification Core.Proto.Intra)
    | "callback" -> Ok Core.Proto.Callback
    | "no-wait" -> Ok (Core.Proto.No_wait { notify = None })
    | "no-wait-notify" -> Ok (Core.Proto.No_wait { notify = Some Core.Proto.Push })
    | "no-wait-inval" ->
        Ok (Core.Proto.No_wait { notify = Some Core.Proto.Invalidate })
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a = Format.pp_print_string fmt (Core.Proto.algorithm_name a) in
  Arg.conv (parse, print)

let platform_conv =
  let parse = function
    | ("table5" | "fast-server" | "fast-net") as s -> Ok s
    | s -> Error (`Msg (Printf.sprintf "unknown platform %S" s))
  in
  Arg.conv (parse, Format.pp_print_string)

let jobs_arg =
  Arg.(
    value
    & opt int (Sim.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulations (default: cores - 1). \
           Results are identical for every value; only wall-clock changes.")

(* ------------------------------------------------------------------ *)
(* shared workload-cell arguments (run / trace / stats)                *)
(* ------------------------------------------------------------------ *)

type cell = {
  cell_algo : Core.Proto.algorithm;
  cell_clients : int;
  cell_loc : float;
  cell_pw : float;
  cell_platform : string;
  cell_large : bool;
  cell_interactive : bool;
  cell_commits : int;
  cell_warmup : int;
  cell_seed : int;
  cell_reps : int;
}

let cell_term ?(commits_default = 2000) () =
  let algo =
    Arg.(
      value
      & opt algo_conv (Core.Proto.Two_phase Core.Proto.Inter)
      & info [ "a"; "algo" ] ~docv:"ALGO"
          ~doc:
            "Consistency algorithm: 2pl, 2pl-intra, cert, cert-intra, \
             callback, no-wait, no-wait-notify, no-wait-inval.")
  in
  let clients =
    Arg.(value & opt int 10 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Client count.")
  in
  let loc =
    Arg.(
      value & opt float 0.25
      & info [ "loc" ] ~docv:"P" ~doc:"Inter-transaction locality (InterXactLoc).")
  in
  let pw =
    Arg.(
      value & opt float 0.2
      & info [ "pw" ] ~docv:"P" ~doc:"Per-atom write probability (ProbWrite).")
  in
  let platform =
    Arg.(
      value & opt platform_conv "table5"
      & info [ "platform" ] ~docv:"P"
          ~doc:"System preset: table5, fast-server, or fast-net.")
  in
  let large =
    Arg.(value & flag & info [ "large" ] ~doc:"Large transactions (20-60 reads).")
  in
  let interactive =
    Arg.(
      value & flag
      & info [ "interactive" ] ~doc:"Interactive think times (5 s / 2 s).")
  in
  let commits =
    Arg.(
      value & opt int commits_default
      & info [ "commits" ] ~docv:"N" ~doc:"Measured committed transactions.")
  in
  let warmup =
    Arg.(value & opt int 300 & info [ "warmup" ] ~docv:"N" ~doc:"Warmup commits.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let reps =
    Arg.(value & opt int 1 & info [ "reps" ] ~docv:"N" ~doc:"Replications to average.")
  in
  let make cell_algo cell_clients cell_loc cell_pw cell_platform cell_large
      cell_interactive cell_commits cell_warmup cell_seed cell_reps =
    {
      cell_algo;
      cell_clients;
      cell_loc;
      cell_pw;
      cell_platform;
      cell_large;
      cell_interactive;
      cell_commits;
      cell_warmup;
      cell_seed;
      cell_reps;
    }
  in
  Term.(
    const make $ algo $ clients $ loc $ pw $ platform $ large $ interactive
    $ commits $ warmup $ seed $ reps)

let cell_spec ?(obs = Obs.Config.off) c =
  if c.cell_clients <= 0 then begin
    Printf.eprintf "ccsim: --clients must be positive\n";
    exit 1
  end;
  if c.cell_loc < 0.0 || c.cell_loc > 1.0 || c.cell_pw < 0.0 || c.cell_pw > 1.0
  then begin
    Printf.eprintf "ccsim: --loc and --pw must lie in [0, 1]\n";
    exit 1
  end;
  let cfg =
    match c.cell_platform with
    | "fast-server" -> Core.Sys_params.fast_server ~n_clients:c.cell_clients ()
    | "fast-net" ->
        Core.Sys_params.fast_server_fast_net ~n_clients:c.cell_clients ()
    | _ -> Core.Sys_params.table5 ~n_clients:c.cell_clients ()
  in
  let xp =
    if c.cell_interactive then
      Db.Xact_params.interactive ~prob_write:c.cell_pw
        ~inter_xact_loc:c.cell_loc ()
    else if c.cell_large then
      Db.Xact_params.large_batch ~prob_write:c.cell_pw
        ~inter_xact_loc:c.cell_loc ()
    else
      Db.Xact_params.short_batch ~prob_write:c.cell_pw
        ~inter_xact_loc:c.cell_loc ()
  in
  Core.Simulator.default_spec ~seed:c.cell_seed ~warmup_commits:c.cell_warmup
    ~measured_commits:c.cell_commits ~obs ~cfg ~xact_params:xp c.cell_algo

(* ------------------------------------------------------------------ *)
(* ccsim run                                                           *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run cell jobs =
    let spec = cell_spec cell in
    let r = Core.Simulator.run_replicated ~jobs spec ~reps:cell.cell_reps in
    Format.printf "%a@." Core.Simulator.pp_result r;
    Format.printf
      "  responses: mean %.3fs p50 %.3fs p95 %.3fs stddev %.3fs | window \
       %.1fs sim / %d events | pushes %d callbacks %d log util %.2f client \
       cpu %.2f@."
      r.Core.Simulator.mean_response r.Core.Simulator.response_p50
      r.Core.Simulator.response_p95 r.Core.Simulator.response_stddev
      r.Core.Simulator.window r.Core.Simulator.events
      r.Core.Simulator.pushes_sent r.Core.Simulator.callbacks_sent
      r.Core.Simulator.log_disk_util r.Core.Simulator.client_cpu_util;
    let ci_r = Obs.Run_stats.mean_ci r.Core.Simulator.rep_mean_responses in
    let ci_t = Obs.Run_stats.mean_ci r.Core.Simulator.rep_throughputs in
    if Obs.Run_stats.available ci_r then
      Format.printf
        "  95%% CI over %d replications: response ±%ss, throughput ±%s/s@."
        ci_r.Obs.Run_stats.ci_n
        (Obs.Run_stats.half_string ci_r)
        (Obs.Run_stats.half_string ~digits:2 ci_t)
    else
      Format.printf
        "  95%% CI: ±n/a — single replication has no dispersion; rerun with \
         --reps N>=2@."
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one simulation and print its metrics.")
    Term.(const run $ cell_term () $ jobs_arg)

(* The recorder ring drops its oldest entries past the limit; if that
   happened the trace the user is looking at is TRUNCATED, which must be
   shouted, not buried in a struct field.  Printed to both streams so it
   is visible in piped and interactive use alike. *)
let warn_if_ring_wrapped (o : Obs.Run.t) =
  let dropped =
    List.fold_left (fun a rp -> a + rp.Obs.Run.trace_dropped) 0 o.Obs.Run.reps
  in
  if dropped > 0 then begin
    Format.printf
      "WARNING: trace ring wrapped — %d oldest events were dropped; only \
       the tail survives (raise --limit)@."
      dropped;
    Printf.eprintf
      "ccsim: WARNING: trace ring wrapped — %d oldest events dropped (raise \
       --limit)\n%!"
      dropped
  end

(* ------------------------------------------------------------------ *)
(* ccsim trace                                                         *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let perfetto_file =
    Arg.(
      value & opt string "trace.json"
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write Chrome/Perfetto trace_event JSON here (open at \
             ui.perfetto.dev or chrome://tracing).")
  in
  let text_file =
    Arg.(
      value & opt (some string) None
      & info [ "text" ] ~docv:"FILE"
          ~doc:"Also write the merged trace as plain text.")
  in
  let events =
    Arg.(
      value & opt int 25
      & info [ "events" ] ~docv:"N" ~doc:"Print the first N merged events.")
  in
  let limit =
    Arg.(
      value & opt int Obs.Recorder.default_limit
      & info [ "limit" ] ~docv:"N"
          ~doc:
            "Ring capacity per replication; past it the oldest events are \
             dropped.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-validate artifacts: the merged trace must be non-empty, \
             the emitted JSON must parse, and (with $(b,--spans)) every \
             span record must be well-formed: balanced open/close, \
             monotone timestamps, parent containment.")
  in
  let spans_flag =
    Arg.(
      value & flag
      & info [ "spans" ]
          ~doc:
            "Also record transaction spans and export them as duration \
             events in the Perfetto JSON (client phases on the client \
             lanes, server phases on one lane per shard).")
  in
  let run cell perfetto_file text_file events limit check spans jobs =
    let obs =
      Obs.Config.make ~trace:true ~trace_limit:limit ~spans
        ~span_limit:limit ()
    in
    let spec = cell_spec ~obs cell in
    let r = Core.Simulator.run_replicated ~jobs spec ~reps:cell.cell_reps in
    match r.Core.Simulator.obs with
    | None ->
        Printf.eprintf "ccsim: run returned no observability payload\n";
        exit 1
    | Some o ->
        let merged = Obs.Run.merged_trace o in
        let span_entries =
          if spans then Obs.Run.merged_spans o else [||]
        in
        Format.printf "%a@." Core.Simulator.pp_result r;
        Format.printf "@.%a@." Obs.Analysis.pp_summary
          (Obs.Analysis.summarize_tagged merged);
        let n = min events (Array.length merged) in
        if n > 0 then begin
          Format.printf "@.first %d of %d merged events:@." n
            (Array.length merged);
          Array.iter
            (fun (rep, e) ->
              Format.printf "  rep%d %12.6f  %s@." rep e.Obs.Recorder.time
                (Obs.Event.to_string e.Obs.Recorder.ev))
            (Array.sub merged 0 n)
        end;
        warn_if_ring_wrapped o;
        let json = Obs.Export.perfetto ~spans:span_entries merged in
        Obs.Export.write_file perfetto_file json;
        Format.printf "@.perfetto trace (%d events%s) written to %s@."
          (Array.length merged)
          (if spans then
             Printf.sprintf " + %d span records" (Array.length span_entries)
           else "")
          perfetto_file;
        (match text_file with
        | Some f ->
            Obs.Export.write_file f (Obs.Export.trace_text merged);
            Format.printf "text trace written to %s@." f
        | None -> ());
        if check then begin
          if Array.length merged = 0 then begin
            Printf.eprintf "ccsim: check failed: merged trace is empty\n";
            exit 1
          end;
          (match Obs.Export.validate_json json with
          | Ok () -> Format.printf "check: perfetto JSON parses ok@."
          | Error e ->
              Printf.eprintf "ccsim: check failed: invalid JSON: %s\n" e;
              exit 1);
          if spans then
            List.iter
              (fun rep ->
                let ck =
                  Obs.Span.validate ~dropped:rep.Obs.Run.spans_dropped
                    rep.Obs.Run.spans
                in
                if not (Obs.Span.check_ok ck) then begin
                  Format.eprintf
                    "ccsim: check failed: invalid span record:@.%a@."
                    Obs.Span.pp_check ck;
                  exit 1
                end)
              o.Obs.Run.reps;
          if spans then
            Format.printf "check: %d span records well-formed@."
              (Array.length span_entries)
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced simulation and report per-protocol breakdowns \
          (messages per commit by kind, lock-wait histogram, notification \
          fan-out, abort timeline); export the merged trace as \
          Chrome/Perfetto JSON.  Tracing works at any $(b,-j): each \
          replication records in its own domain and the merged trace is \
          identical for every job count.")
    Term.(
      const run $ cell_term ~commits_default:500 () $ perfetto_file
      $ text_file $ events $ limit $ check $ spans_flag $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim stats                                                         *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let series_file =
    Arg.(
      value & opt string "series.csv"
      & info [ "series" ] ~docv:"FILE"
          ~doc:
            "Write the sampled time series as CSV (replication k > 0 goes \
             to FILE.repk).")
  in
  let interval =
    Arg.(
      value & opt float 5.0
      & info [ "interval" ] ~docv:"S"
          ~doc:"Sampling interval in simulated seconds.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Self-validate: every emitted CSV must round-trip exactly.")
  in
  let run cell series_file interval check jobs =
    if interval <= 0.0 then begin
      Printf.eprintf "ccsim: --interval must be positive\n";
      exit 1
    end;
    let obs =
      Obs.Config.make ~series:true ~sample_interval:interval ~profile:true ()
    in
    let spec = cell_spec ~obs cell in
    let r = Core.Simulator.run_replicated ~jobs spec ~reps:cell.cell_reps in
    Format.printf "%a@." Core.Simulator.pp_result r;
    match r.Core.Simulator.obs with
    | None ->
        Printf.eprintf "ccsim: run returned no observability payload\n";
        exit 1
    | Some o ->
        let first = List.hd o.Obs.Run.reps in
        Format.printf "@.facilities (seed %d):@." first.Obs.Run.rep_seed;
        List.iter
          (fun f -> Format.printf "  %a@." Obs.Run.pp_fac_snapshot f)
          first.Obs.Run.facilities;
        (match first.Obs.Run.profile with
        | Some p ->
            Format.printf
              "@.engine: %d events, %d processes, %d holds, %d wakes, \
               event-heap high-water %d@."
              p.Sim.Engine.pr_events p.Sim.Engine.pr_spawned
              p.Sim.Engine.pr_holds p.Sim.Engine.pr_wakes
              p.Sim.Engine.pr_heap_hwm;
            let top = 12 in
            Format.printf "  %-24s %10s %10s %14s@." "process" "events"
              "holds" "hold-time (s)";
            List.iteri
              (fun i pp ->
                if i < top then
                  Format.printf "  %-24s %10d %10d %14.3f@."
                    pp.Sim.Engine.pp_name pp.Sim.Engine.pp_runs
                    pp.Sim.Engine.pp_holds pp.Sim.Engine.pp_hold_time)
              p.Sim.Engine.pr_per_process
        | None -> ());
        warn_if_ring_wrapped o;
        (match first.Obs.Run.series with
        | Some s when Obs.Series.length s > 0 ->
            let names = Obs.Series.names s in
            let rows = Obs.Series.rows s in
            let times = Obs.Series.times s in
            (* the measurement window is the last [window] simulated
               seconds; everything before it is warmup *)
            let warmup_end =
              Float.max 0.0
                (r.Core.Simulator.sim_time -. r.Core.Simulator.window)
            in
            Format.printf "@.series (%d samples every %gs):@."
              (Obs.Series.length s) (Obs.Series.interval s);
            Format.printf "  %-18s %12s %12s %12s %22s@." "column" "min"
              "mean" "max" "batch-means 95% CI";
            Array.iteri
              (fun j name ->
                let lo = ref infinity and hi = ref neg_infinity in
                let sum = ref 0.0 in
                Array.iter
                  (fun row ->
                    let v = row.(j) in
                    if v < !lo then lo := v;
                    if v > !hi then hi := v;
                    sum := !sum +. v)
                  rows;
                (* batch-means interval from the post-warmup samples of
                   this single long run: the per-column analogue of a
                   replication CI when there is only one replication *)
                let post =
                  let acc = ref [] in
                  Array.iteri
                    (fun i row ->
                      if times.(i) >= warmup_end then acc := row.(j) :: !acc)
                    rows;
                  Array.of_list (List.rev !acc)
                in
                let bm =
                  match Obs.Run_stats.batch_means post with
                  | Some ci when Obs.Run_stats.available ci ->
                      Printf.sprintf "%.4f ±%s" ci.Obs.Run_stats.ci_mean
                        (Obs.Run_stats.half_string ~digits:4 ci)
                  | _ -> "±n/a"
                in
                Format.printf "  %-18s %12.4f %12.4f %12.4f %22s@." name !lo
                  (!sum /. float_of_int (Array.length rows))
                  !hi bm)
              names;
            (* Welch warmup adequacy: average each column across the
               replications (classic Welch smoothing input), smooth, and
               ask whether the curve had settled into its steady-state
               band before the measurement window opened *)
            let rep_series =
              List.filter_map (fun rp -> rp.Obs.Run.series) o.Obs.Run.reps
            in
            Format.printf
              "@.warmup adequacy (Welch, 5%% band; measurement opened at \
               t=%.1fs):@."
              warmup_end;
            Format.printf "  %-18s %14s %s@." "column" "settles at" "verdict";
            Array.iteri
              (fun j name ->
                let arrays =
                  List.map
                    (fun sr ->
                      Array.map (fun row -> row.(j)) (Obs.Series.rows sr))
                    rep_series
                in
                let len =
                  List.fold_left
                    (fun m a -> min m (Array.length a))
                    (Array.length rows) arrays
                in
                let avg =
                  Array.init len (fun i ->
                      List.fold_left (fun acc a -> acc +. a.(i)) 0.0 arrays
                      /. float_of_int (List.length arrays))
                in
                let wu =
                  Obs.Run_stats.warmup_diagnostic ~warmup_end
                    ~times:(Array.sub times 0 len) avg
                in
                let settle, verdict =
                  match wu.Obs.Run_stats.wu_settle with
                  | _ when wu.Obs.Run_stats.wu_samples < 4 ->
                      ("-", "n/a (too few samples)")
                  | Some t when wu.Obs.Run_stats.wu_adequate ->
                      (Printf.sprintf "%.1fs" t, "ok")
                  | Some t ->
                      ( Printf.sprintf "%.1fs" t,
                        "LATE — curve still drifting; extend --warmup" )
                  | None -> ("-", "never settles in this run")
                in
                Format.printf "  %-18s %14s %s@." name settle verdict)
              names
        | _ -> ());
        List.iteri
          (fun i rp ->
            match rp.Obs.Run.series with
            | None -> ()
            | Some s ->
                let file =
                  if i = 0 then series_file
                  else Printf.sprintf "%s.rep%d" series_file i
                in
                let csv = Obs.Export.series_csv s in
                Obs.Export.write_file file csv;
                Format.printf "series csv written to %s@." file;
                if check then begin
                  let s' = Obs.Export.series_of_csv csv in
                  if not (Obs.Series.equal s s') then begin
                    Printf.eprintf
                      "ccsim: check failed: %s does not round-trip\n" file;
                    exit 1
                  end
                end)
          o.Obs.Run.reps;
        if check then Format.printf "check: all series CSVs round-trip ok@."
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a sampled simulation and report facility statistics \
          (utilization, queue high-water marks, busy time), the engine \
          profile (per-process event counts), and fixed-interval time \
          series of utilizations, lock-table occupancy, blocked clients, \
          and commit/abort rates, exported as CSV.")
    Term.(
      const run $ cell_term ~commits_default:500 () $ series_file $ interval
      $ check $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim metrics                                                       *)
(* ------------------------------------------------------------------ *)

let metrics_cmd =
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the database over N shard servers; cross-shard \
             transactions commit via 2PC and contribute prepare/decide \
             phases and in-doubt time.")
  in
  let out_file =
    Arg.(
      value & opt string "metrics.prom"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the OpenMetrics exposition here.")
  in
  let spans_file =
    Arg.(
      value & opt (some string) None
      & info [ "spans-text" ] ~docv:"FILE"
          ~doc:"Also write the merged span record as plain text.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-validate: every span record must be well-formed \
             (balanced open/close, monotone timestamps, parent \
             containment), the per-phase latency components must sum to \
             the end-to-end commit latency, and the commit-latency \
             histogram must count exactly the committed transactions.")
  in
  let run cell shards out_file spans_file check jobs =
    if shards < 1 then begin
      Printf.eprintf "ccsim: --shards must be positive\n";
      exit 1
    end;
    let spec =
      { (cell_spec ~obs:Obs.Config.latency cell) with
        Core.Simulator.n_shards = shards }
    in
    let r =
      if shards > 1 then
        Shard.Shard_sim.run_replicated ~jobs spec ~reps:cell.cell_reps
      else Core.Simulator.run_replicated ~jobs spec ~reps:cell.cell_reps
    in
    match r.Core.Simulator.obs with
    | None ->
        Printf.eprintf "ccsim: run returned no observability payload\n";
        exit 1
    | Some o ->
        Format.printf "%a@." Core.Simulator.pp_result r;
        let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
        Format.printf "@.%a@." Obs.Critical_path.pp cp;
        let m =
          match Obs.Run.merged_metrics o with
          | Some m -> m
          | None ->
              Printf.eprintf "ccsim: run returned no metrics registry\n";
              exit 1
        in
        (match Obs.Metrics.histogram m "ccsim_commit_latency_seconds" with
        | Some h when Obs.Metrics.Hist.count h > 0 ->
            Format.printf
              "@.commit latency (n=%d): p50 %.4fs p95 %.4fs p99 %.4fs mean \
               %.4fs@."
              (Obs.Metrics.Hist.count h)
              (Obs.Metrics.Hist.quantile h 0.50)
              (Obs.Metrics.Hist.quantile h 0.95)
              (Obs.Metrics.Hist.quantile h 0.99)
              (Obs.Metrics.Hist.sum h
              /. float_of_int (Obs.Metrics.Hist.count h))
        | _ -> Format.printf "@.commit latency: no observations@.");
        Obs.Export.write_file out_file (Obs.Metrics.to_openmetrics m);
        Format.printf "openmetrics written to %s@." out_file;
        (match spans_file with
        | Some f ->
            Obs.Export.write_file f
              (Obs.Export.span_text (Obs.Run.merged_spans o));
            Format.printf "span text written to %s@." f
        | None -> ());
        if check then begin
          List.iter
            (fun rep ->
              let ck =
                Obs.Span.validate ~dropped:rep.Obs.Run.spans_dropped
                  rep.Obs.Run.spans
              in
              if not (Obs.Span.check_ok ck) then begin
                Format.eprintf
                  "ccsim: check failed: invalid span record:@.%a@."
                  Obs.Span.pp_check ck;
                exit 1
              end)
            o.Obs.Run.reps;
          if cp.Obs.Critical_path.cp_xacts = 0 then begin
            Printf.eprintf "ccsim: check failed: no committed transactions\n";
            exit 1
          end;
          if not (Obs.Critical_path.reconciles cp) then begin
            Printf.eprintf
              "ccsim: check failed: phase components do not sum to the \
               end-to-end latency (end-to-end %.9f, phases %.9f)\n"
              cp.Obs.Critical_path.cp_end_to_end
              cp.Obs.Critical_path.cp_phase_sum;
            exit 1
          end;
          (match Obs.Metrics.histogram m "ccsim_commit_latency_seconds" with
          | Some h
            when Obs.Metrics.Hist.count h = cp.Obs.Critical_path.cp_xacts ->
              ()
          | Some h ->
              Printf.eprintf
                "ccsim: check failed: latency histogram count %d <> %d \
                 committed transactions\n"
                (Obs.Metrics.Hist.count h) cp.Obs.Critical_path.cp_xacts;
              exit 1
          | None ->
              Printf.eprintf
                "ccsim: check failed: no commit-latency histogram\n";
              exit 1);
          Format.printf
            "check: %d span records well-formed; %d phases reconcile to \
             %.6fs end-to-end (residual %.2e)@."
            (Obs.Run.total_spans o)
            (List.length cp.Obs.Critical_path.cp_client)
            cp.Obs.Critical_path.cp_end_to_end
            (Obs.Critical_path.residual cp)
        end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a simulation with transaction spans and the online metrics \
          registry enabled; print the commit-latency decomposition (think, \
          client CPU, fetch/certify/commit waits, abort work, restart \
          back-off — summing to the end-to-end latency), per-shard server \
          phases, and 2PC prepare/decide phases; export every counter, \
          gauge, and latency histogram as OpenMetrics text.  Deterministic \
          at any $(b,-j): artifacts are byte-identical for every job \
          count.")
    Term.(
      const run $ cell_term ~commits_default:500 () $ shards $ out_file
      $ spans_file $ check $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim causal                                                        *)
(* ------------------------------------------------------------------ *)

let causal_cmd =
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the database over N shard servers; 2PC \
             prepare/vote/decision fan-out then shows up as branching in \
             the causal DAGs.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Run under the seeded default fault plan (message loss, \
             duplication and delay, client crashes; independent shard \
             crashes and coordinator amnesia when $(b,--shards) > 1), so \
             the DAGs include retransmissions, duplicate copies, and \
             termination-protocol traffic.")
  in
  let dag_file =
    Arg.(
      value & opt (some string) None
      & info [ "dag" ] ~docv:"FILE"
          ~doc:
            "Write the merged causal record as plain text; byte-identical \
             for every $(b,-j).")
  in
  let perfetto_file =
    Arg.(
      value & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write Chrome/Perfetto trace_event JSON with span bars and one \
             flow arrow per delivered message copy.")
  in
  let chains =
    Arg.(
      value & opt int 3
      & info [ "chains" ] ~docv:"N"
          ~doc:
            "Print the critical chain (gating message sequence) of the N \
             slowest committed transactions.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Self-validate: every transaction's DAG must be well-formed \
             (acyclic by construction, single root, delivery never before \
             send, causes never after effects), and the committed DAGs' \
             root-to-end sum must reconcile with the span-derived \
             end-to-end commit latency to 1e-9.")
  in
  let run cell shards faults dag_file perfetto_file chains check jobs =
    if shards < 1 then begin
      Printf.eprintf "ccsim: --shards must be positive\n";
      exit 1
    end;
    let spec =
      { (cell_spec ~obs:Obs.Config.causal cell) with
        Core.Simulator.n_shards = shards;
        fault =
          (* the full gremlin set: message loss/dup/delay and client
             crashes from the default plan, plus — sharded — independent
             shard crashes and coordinator amnesia, so every DAG shape
             the protocols can produce shows up *)
          (if not faults then Fault.Plan.none
           else if shards > 1 then
             {
               (Fault.Plan.default ~seed:cell.cell_seed) with
               Fault.Plan.server_crash_mean = 8.0;
               server_restart_mean = 0.5;
               checkpoint_interval = 5.0;
               coord_crash_prob = 0.1;
             }
           else Fault.Plan.default ~seed:cell.cell_seed);
      }
    in
    let r =
      if shards > 1 then
        Shard.Shard_sim.run_replicated ~jobs spec ~reps:cell.cell_reps
      else Core.Simulator.run_replicated ~jobs spec ~reps:cell.cell_reps
    in
    match r.Core.Simulator.obs with
    | None ->
        Printf.eprintf "ccsim: run returned no observability payload\n";
        exit 1
    | Some o ->
        Format.printf "%a@." Core.Simulator.pp_result r;
        let mc = Obs.Run.merged_causal o in
        let an =
          Obs.Causal.analyze ~dropped:(Obs.Run.causal_dropped o) mc
        in
        Format.printf "@.%a@." Obs.Causal.pp_check an.Obs.Causal.an_check;
        (* per-kind wire amplification over every Send node *)
        let amps = Obs.Causal.amplification mc in
        Format.printf "@.message amplification by kind:@.";
        Format.printf "  %-16s %8s %8s %10s %6s %6s@." "kind" "msgs" "pkts"
          "bytes" "retx" "dups";
        List.iter
          (fun a ->
            Format.printf "  %-16s %8d %8d %10d %6d %6d@."
              a.Obs.Causal.am_kind a.Obs.Causal.am_msgs a.Obs.Causal.am_pkts
              a.Obs.Causal.am_bytes a.Obs.Causal.am_retx a.Obs.Causal.am_dups)
          amps;
        let ck = an.Obs.Causal.an_check in
        if ck.Obs.Causal.ck_committed > 0 then
          Format.printf "  %d msgs / %d commits = %.2f msgs per commit@."
            ck.Obs.Causal.ck_msgs ck.Obs.Causal.ck_committed
            (float_of_int ck.Obs.Causal.ck_msgs
            /. float_of_int ck.Obs.Causal.ck_committed);
        (* waterfall of the slowest committed transactions' gating chains *)
        let committed =
          Array.to_list an.Obs.Causal.an_dags
          |> List.filter (fun d -> d.Obs.Causal.dg_ok)
        in
        let slowest =
          List.sort
            (fun a b ->
              compare
                (b.Obs.Causal.dg_finish -. b.Obs.Causal.dg_start)
                (a.Obs.Causal.dg_finish -. a.Obs.Causal.dg_start))
            committed
        in
        let rec take n = function
          | [] -> []
          | _ when n <= 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        List.iter
          (fun d ->
            let dur = d.Obs.Causal.dg_finish -. d.Obs.Causal.dg_start in
            Format.printf
              "@.critical chain: rep%d client %d xid %d — %d msgs, %d hops, \
               %.6fs@."
              d.Obs.Causal.dg_rep d.Obs.Causal.dg_client d.Obs.Causal.dg_xid
              d.Obs.Causal.dg_msgs
              (List.length d.Obs.Causal.dg_chain)
              dur;
            List.iter
              (fun l ->
                let at = l.Obs.Causal.lk_send -. d.Obs.Causal.dg_start in
                let fly = l.Obs.Causal.lk_recv -. l.Obs.Causal.lk_send in
                let flags =
                  (if l.Obs.Causal.lk_retry > 0 then
                     Printf.sprintf " retry=%d" l.Obs.Causal.lk_retry
                   else "")
                  ^
                  if l.Obs.Causal.lk_dup > 0 then
                    Printf.sprintf " dup=%d" l.Obs.Causal.lk_dup
                  else ""
                in
                Format.printf "  +%.6fs %-16s %s%.6fs in flight%s@." at
                  l.Obs.Causal.lk_label
                  (String.make
                     (min 40 (int_of_float (at /. Float.max dur 1e-9 *. 40.)))
                     ' ')
                  fly flags)
              d.Obs.Causal.dg_chain)
          (take chains slowest);
        (* artifacts *)
        (match dag_file with
        | Some f ->
            Obs.Export.write_file f (Obs.Export.dag_text mc);
            Format.printf "@.dag text written to %s@." f
        | None -> ());
        (match perfetto_file with
        | Some f ->
            let js =
              Obs.Export.perfetto ~spans:(Obs.Run.merged_spans o) ~flows:mc
                (Obs.Run.merged_trace o)
            in
            Obs.Export.write_file f js;
            Format.printf "perfetto json written to %s@." f;
            (match Obs.Export.validate_json js with
            | Ok () -> ()
            | Error e ->
                Printf.eprintf "ccsim: emitted invalid JSON: %s\n" e;
                exit 1)
        | None -> ());
        (* reconciliation with the span-phase decomposition: Root/End use
           the Xact span's exact open/close instants, so the two sums are
           the same numbers added in a different order *)
        let cp = Obs.Critical_path.analyze (Obs.Run.merged_spans o) in
        let residual =
          Float.abs
            (an.Obs.Causal.an_chain_sum -. cp.Obs.Critical_path.cp_end_to_end)
        in
        Format.printf
          "@.causal end-to-end %.6fs vs span end-to-end %.6fs (residual \
           %.2e)@."
          an.Obs.Causal.an_chain_sum cp.Obs.Critical_path.cp_end_to_end
          residual;
        if check then begin
          if not (Obs.Causal.check_ok ck) then begin
            Format.eprintf "ccsim: check failed: invalid causal record:@.%a@."
              Obs.Causal.pp_check ck;
            exit 1
          end;
          if ck.Obs.Causal.ck_committed = 0 then begin
            Printf.eprintf "ccsim: check failed: no committed transactions\n";
            exit 1
          end;
          if residual > 1e-9 then begin
            Printf.eprintf
              "ccsim: check failed: causal chain sum %.12f does not \
               reconcile with span end-to-end %.12f\n"
              an.Obs.Causal.an_chain_sum cp.Obs.Critical_path.cp_end_to_end;
            exit 1
          end;
          Format.printf
            "check: %d DAGs well-formed (%d committed, %d msgs, %d \
             delivered, %d dropped); causal sum reconciles to %.6fs \
             (residual %.2e)@."
            ck.Obs.Causal.ck_groups ck.Obs.Causal.ck_committed
            ck.Obs.Causal.ck_msgs ck.Obs.Causal.ck_delivered
            ck.Obs.Causal.ck_dropped_msgs an.Obs.Causal.an_chain_sum residual
        end
  in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Run a simulation with causal message tracing: every message \
          carries the node that caused it, so each transaction yields a \
          causal DAG covering fetches, callbacks, notifications, \
          retransmissions, and 2PC fan-out.  Prints DAG validation, \
          per-kind message-amplification, and the slowest transactions' \
          gating chains; exports the record as deterministic text \
          ($(b,--dag)) and Perfetto flow arrows ($(b,--perfetto)).")
    Term.(
      const run $ cell_term ~commits_default:500 () $ shards $ faults
      $ dag_file $ perfetto_file $ chains $ check $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim exp                                                           *)
(* ------------------------------------------------------------------ *)

let exp_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (see $(b,ccsim list)), or 'all'.")
  in
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List registered experiment ids with descriptions and exit.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Fewer commits per run.") in
  let detail =
    Arg.(value & flag & info [ "detail" ] ~doc:"Abort/hit/message columns.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write figures as CSV.")
  in
  let reps =
    Arg.(
      value & opt int 1
      & info [ "reps" ] ~docv:"N"
          ~doc:
            "Replications per cell (default 1).  At N >= 2 every figure \
             cell gains a 95% confidence interval (the ± columns); at 1 \
             they read ±n/a.")
  in
  let run ids list_flag quick detail csv reps jobs =
    if list_flag then begin
      List.iter
        (fun (id, descr, _) -> Printf.printf "%-20s %s\n" id descr)
        Experiments.Suite.all;
      Printf.printf "%-20s %s\n" "client-sweep"
        "scalability: engine events/s and heap vs client population \
         (excluded from 'all')";
      exit 0
    end;
    if ids = [] then begin
      Printf.eprintf
        "ccsim: no experiment ids given (try 'ccsim exp --list')\n";
      exit 1
    end;
    if reps < 1 then begin
      Printf.eprintf "ccsim: --reps must be >= 1\n";
      exit 1
    end;
    let opts =
      let base =
        if quick then Experiments.Exp_defs.quick_opts
        else Experiments.Exp_defs.default_opts
      in
      { base with Experiments.Exp_defs.reps }
    in
    Format.printf "%s@."
      (Experiments.Report.repro_line ~seed:opts.Experiments.Exp_defs.seed ~jobs);
    let runner = Experiments.Exp_defs.make_runner ~jobs opts in
    (* client-sweep benchmarks the simulator itself (wall-clock cells run
       sequentially, uncached); it is excluded from 'all' so regenerating
       the paper's figures never implies a 100k-client run *)
    let sweep_requested = List.mem "client-sweep" ids in
    let figure_ids = List.filter (fun id -> id <> "client-sweep") ids in
    let selected =
      if List.mem "all" figure_ids then Experiments.Suite.all
      else
        List.map
          (fun id ->
            match Experiments.Suite.find id with
            | Some e -> e
            | None ->
                Printf.eprintf
                  "ccsim: unknown experiment %S (try 'ccsim list')\n" id;
                exit 1)
          figure_ids
    in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (id, descr, build) ->
        Format.printf "@.###### %s — %s@." id descr;
        let out = Experiments.Exp_defs.run_build runner build in
        Experiments.Report.print_output ~detail Format.std_formatter out;
        match out with
        | Experiments.Suite.Figures figs ->
            List.iter
              (fun f ->
                List.iter
                  (fun l ->
                    Buffer.add_string buf l;
                    Buffer.add_char buf '\n')
                  (Experiments.Report.figure_csv f))
              figs
        | Experiments.Suite.Map _ -> ())
      selected;
    if sweep_requested then begin
      Format.printf "@.###### client-sweep — simulator scalability vs \
                     population@.";
      let cells =
        Experiments.Client_sweep.run ~quick
          ~seed:opts.Experiments.Exp_defs.seed ()
      in
      Experiments.Client_sweep.print Format.std_formatter cells;
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (Experiments.Client_sweep.csv cells)
    end;
    match csv with
    | Some file ->
        let oc = open_out file in
        output_string oc (Buffer.contents buf);
        close_out oc;
        Format.printf "@.csv written to %s@." file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ ids $ list_flag $ quick $ detail $ csv $ reps $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim chaos                                                         *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let seeds =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Seeded fault plans per algorithm (seeds 1..N).")
  in
  let algos =
    Arg.(
      value
      & opt (list algo_conv) Experiments.Chaos.default_algos
      & info [ "algos" ] ~docv:"A,B,..."
          ~doc:"Algorithms to audit (default: all five).")
  in
  let drop =
    Arg.(
      value & opt (some float) None
      & info [ "drop" ] ~docv:"P" ~doc:"Override message drop probability.")
  in
  let crash_mean =
    Arg.(
      value & opt (some float) None
      & info [ "crash-mean" ] ~docv:"S"
          ~doc:"Override mean seconds between client crashes (0 disables).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer commits per run.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the database over N shard servers (default 1). \
             Cross-shard transactions commit via presumed-abort 2PC; the \
             audit adds per-shard durability and cross-shard atomicity \
             checks.  With --server-faults the plans come from \
             Fault.Plan.shard_default: independent per-shard crash \
             streams plus coordinator amnesia between prepare and \
             commit.")
  in
  let server_faults =
    Arg.(
      value & flag
      & info [ "server-faults" ]
          ~doc:
            "Crash and recover the SERVER instead of the clients: plans \
             from Fault.Plan.server_default (durable WAL, checkpoints, \
             log replay), audited for durability — no acknowledged \
             commit lost, no uncommitted update visible.")
  in
  let unsafe =
    Arg.(
      value & flag
      & info [ "unsafe-skip-validation" ]
          ~doc:
            "Deliberately disable commit validation to prove the audit \
             catches protocol violations (expected to FAIL).")
  in
  let run seeds algos drop crash_mean quick shards server_faults unsafe jobs =
    if seeds <= 0 then begin
      Printf.eprintf "ccsim: --seeds must be positive\n";
      exit 1
    end;
    if shards < 1 then begin
      Printf.eprintf "ccsim: --shards must be positive\n";
      exit 1
    end;
    let measured_commits = if quick then 150 else 400 in
    let plan seed =
      let p =
        if server_faults then
          if shards > 1 then Fault.Plan.shard_default ~seed
          else Fault.Plan.server_default ~seed
        else Fault.Plan.default ~seed
      in
      let p =
        match drop with Some d -> { p with Fault.Plan.drop_prob = d } | None -> p
      in
      let p =
        match crash_mean with
        | Some m ->
            if m = 0.0 then
              { p with Fault.Plan.crash_mean = 0.0; restart_mean = 0.0 }
            else { p with Fault.Plan.crash_mean = m }
        | None -> p
      in
      { p with Fault.Plan.unsafe_skip_validation = unsafe }
    in
    let specs =
      List.concat_map
        (fun algo ->
          List.init seeds (fun k ->
              (* validation bypass only shows up under contention, so the
                 violation proof runs on the hot workload *)
              Experiments.Chaos.spec ~measured_commits ~n_shards:shards
                ~hot:unsafe ~fault:(plan (k + 1)) algo))
        algos
    in
    Format.printf
      "# chaos: %d plans x %d algorithms, %d commits each, %d shard(s), %s@."
      seeds (List.length algos) measured_commits shards
      (Experiments.Report.repro_line ~seed:1 ~jobs);
    let verdicts = Experiments.Chaos.sweep ~jobs specs in
    let failures =
      List.filter_map
        (fun (sp, v) ->
          Format.printf "%a@." Experiments.Chaos.pp_verdict v;
          if Experiments.Chaos.ok v then None else Some (sp, v))
        (List.combine specs verdicts)
    in
    match failures with
    | [] ->
        Format.printf "@.all %d chaos runs passed their audits@."
          (List.length specs)
    | fs ->
        Format.printf "@.%d of %d chaos runs FAILED; shrinking first failure@."
          (List.length fs) (List.length specs);
        let sp, v = List.hd fs in
        let minimal = Experiments.Chaos.shrink sp in
        let repro_file =
          Printf.sprintf "chaos-repro-%s-seed%d.trace"
            (Core.Proto.algorithm_name v.Experiments.Chaos.v_algo)
            minimal.Fault.Plan.seed
        in
        let n_events, n_spans =
          Experiments.Chaos.write_repro_trace ~file:repro_file
            { sp with Core.Simulator.fault = minimal }
        in
        let base = Filename.remove_extension repro_file in
        Format.printf
          "minimal reproducer: algo=%s plan={%s}@.rerun with: ccsim chaos \
           --seeds 1 ... (seed %d)@.reproducer trace (%d events) written to \
           %s@.span snapshot (%d records) written to %s.spans, metrics to \
           %s.metrics@."
          (Core.Proto.algorithm_name v.Experiments.Chaos.v_algo)
          (Fault.Plan.to_string minimal) minimal.Fault.Plan.seed n_events
          repro_file n_spans base base;
        exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Audit the consistency algorithms under seeded fault injection: \
          every run must stay serializable, reach its commit target, pass \
          the lock-table and cache-coherence sweeps, and recover every \
          crashed client.  With --server-faults the server itself crashes \
          and recovers from its redo log, and every run must also pass \
          the durability audit.")
    Term.(
      const run $ seeds $ algos $ drop $ crash_mean $ quick $ shards
      $ server_faults $ unsafe $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* ccsim bench-diff                                                    *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let baseline =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline snapshot (bench --json).")
  in
  let current =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current snapshot to compare.")
  in
  let threshold =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"R"
          ~doc:
            "Relative slowdown tolerated before a metric counts as a \
             regression (0.25 = 25%).  Microbench deltas whose confidence \
             intervals overlap never regress, whatever the ratio.")
  in
  let run baseline current threshold =
    if threshold <= 0.0 then begin
      Printf.eprintf "ccsim: --threshold must be positive\n";
      exit 2
    end;
    let load path =
      match Experiments.Telemetry.of_json (read_file path) with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "ccsim: %s: %s\n" path e;
          exit 2
    in
    let b = load baseline in
    let c = load current in
    Format.printf "# baseline: %s@.# current:  %s@." b.Experiments.Telemetry.s_repro
      c.Experiments.Telemetry.s_repro;
    let v = Experiments.Telemetry.diff ~threshold ~baseline:b ~current:c () in
    Format.printf "%a" Experiments.Telemetry.pp_verdict v;
    exit (if Experiments.Telemetry.ok v then 0 else 1)
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two benchmark telemetry snapshots (bench --json) with \
          noise awareness and exit non-zero when the current one regressed \
          beyond the threshold.")
    Term.(const run $ baseline $ current $ threshold)

(* ------------------------------------------------------------------ *)
(* ccsim list                                                          *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-14s %s\n" id descr)
      Experiments.Suite.all;
    Printf.printf "%-14s %s\n" "client-sweep"
      "scalability: engine events/s and heap vs client population \
       (excluded from 'all')"
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "ccsim" ~version:"1.0.0"
      ~doc:
        "Client/server DBMS cache-consistency simulator (Wang & Rowe, \
         UCB/ERL M90/120)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            trace_cmd;
            stats_cmd;
            metrics_cmd;
            causal_cmd;
            exp_cmd;
            chaos_cmd;
            bench_diff_cmd;
            list_cmd;
          ]))
